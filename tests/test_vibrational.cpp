// Vibrational relaxation extension (paper "Future Work"): two vibrational
// DOF that exchange with the collision pool at a controllable rate.
#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.h"

namespace core = cmdsmc::core;
namespace cmdp = cmdsmc::cmdp;

namespace {

core::SimConfig vib_box(double exchange_prob, double vib_t0) {
  core::SimConfig cfg;
  cfg.nx = 20;
  cfg.ny = 20;
  cfg.closed_box = true;
  cfg.has_wedge = false;
  cfg.mach = 0.01;
  cfg.sigma = 0.2;
  cfg.lambda_inf = 0.0;
  cfg.particles_per_cell = 30.0;
  cfg.reservoir_fraction = 0.0;
  cfg.vibrational = true;
  cfg.vib_exchange_prob = exchange_prob;
  cfg.vib_init_temperature = vib_t0;
  cfg.seed = 606;
  return cfg;
}

// Per-DOF energies (trans, rot, vib).
struct DofEnergies {
  double trans, rot, vib;
};

DofEnergies dof_energies(const core::SimulationD& sim) {
  const auto& s = sim.particles();
  DofEnergies e{0, 0, 0};
  for (std::size_t i = 0; i < s.size(); ++i) {
    e.trans += s.ux[i] * s.ux[i] + s.uy[i] * s.uy[i] + s.uz[i] * s.uz[i];
    e.rot += s.r0[i] * s.r0[i] + s.r1[i] * s.r1[i];
    e.vib += s.v0[i] * s.v0[i] + s.v1[i] * s.v1[i];
  }
  e.trans /= 3.0;
  e.rot /= 2.0;
  e.vib /= 2.0;
  return e;
}

}  // namespace

TEST(Vibrational, ValidatesConfig) {
  auto cfg = vib_box(0.2, 1.0);
  EXPECT_NO_THROW(cfg.validate());
  cfg.vib_exchange_prob = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = vib_box(0.2, -1.0);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Vibrational, DisabledByDefaultAndNoVibArrays) {
  core::SimConfig cfg;
  cfg.closed_box = true;
  cfg.has_wedge = false;
  cfg.mach = 0.01;
  cfg.nx = cfg.ny = 8;
  cmdp::ThreadPool pool(2);
  core::SimulationD sim(cfg, &pool);
  EXPECT_TRUE(sim.particles().v0.empty());
}

TEST(Vibrational, EnergyConservedWithExchange) {
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(vib_box(0.3, 1.0), &pool);
  const double e0 = sim.total_energy();
  sim.run(80);
  EXPECT_NEAR(sim.total_energy() / e0, 1.0, 1e-10);
}

TEST(Vibrational, ColdVibrationRelaxesToEquipartition) {
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(vib_box(0.3, 0.0), &pool);
  const auto before = dof_energies(sim);
  EXPECT_NEAR(before.vib, 0.0, 1e-12);
  sim.run(120);
  const auto after = dof_energies(sim);
  // All seven DOF share the energy: per-DOF ratios near 1.
  EXPECT_NEAR(after.vib / after.trans, 1.0, 0.08);
  EXPECT_NEAR(after.rot / after.trans, 1.0, 0.08);
}

TEST(Vibrational, RelaxationRateScalesWithExchangeProbability) {
  cmdp::ThreadPool pool(4);
  core::SimulationD fast(vib_box(0.5, 0.0), &pool);
  core::SimulationD slow(vib_box(0.05, 0.0), &pool);
  const int steps = 10;
  fast.run(steps);
  slow.run(steps);
  const auto ef = dof_energies(fast);
  const auto es = dof_energies(slow);
  // After a few steps the fast exchanger has moved much more energy into
  // vibration.
  EXPECT_GT(ef.vib, 3.0 * es.vib);
}

TEST(Vibrational, ZeroExchangeFreezesVibration) {
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(vib_box(0.0, 0.0), &pool);
  sim.run(40);
  EXPECT_NEAR(dof_energies(sim).vib, 0.0, 1e-12);
}

TEST(Vibrational, HotVibrationCoolsTowardEquipartition) {
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(vib_box(0.3, 4.0), &pool);  // vib starts at 4 T_inf
  const auto before = dof_energies(sim);
  EXPECT_GT(before.vib / before.trans, 3.0);
  sim.run(120);
  const auto after = dof_energies(sim);
  EXPECT_NEAR(after.vib / after.trans, 1.0, 0.1);
}

TEST(Vibrational, WorksWithFixedPointEngine) {
  cmdp::ThreadPool pool(4);
  core::SimulationF sim(vib_box(0.3, 0.0), &pool);
  const double e0 = sim.total_energy();
  sim.run(60);
  EXPECT_NEAR(sim.total_energy() / e0, 1.0, 2e-3);
  // Vibration picked up energy.
  const auto& s = sim.particles();
  double ev = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    ev += s.v0[i].to_double() * s.v0[i].to_double() +
          s.v1[i].to_double() * s.v1[i].to_double();
  }
  EXPECT_GT(ev, 0.0);
}
