#include "core/surface_sampling.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <sstream>

#include "core/simulation.h"
#include "io/shock_analysis.h"
#include "io/surface_csv.h"
#include "physics/theory.h"

namespace core = cmdsmc::core;
namespace geom = cmdsmc::geom;
namespace cmdp = cmdsmc::cmdp;
namespace io = cmdsmc::io;

namespace {

constexpr double kRad = std::numbers::pi / 180.0;

core::SimConfig body_wedge_config() {
  core::SimConfig cfg;
  cfg.nx = 98;
  cfg.ny = 64;
  cfg.mach = 4.0;
  cfg.sigma = 0.18;
  cfg.particles_per_cell = 8.0;
  cfg.body = geom::Body::Wedge(20.0, 25.0, 30.0 * kRad);
  cfg.seed = 2024;
  return cfg;
}

}  // namespace

// --- SurfaceSampler unit behavior --------------------------------------------

TEST(SurfaceSampler, NormalizesSyntheticEventsIntoFluxes) {
  // Unit square: segment 0 is the bottom edge, outward normal (0,-1),
  // tangent (+1,0), length 1.
  const geom::Body sq = geom::Body::FlatPlate(0.0, 0.0, 1.0, 1.0);
  core::SurfaceSampler sampler(sq.segment_count(), 2, 1.0);
  ASSERT_TRUE(sampler.active());

  // One event per lane on the bottom face over two steps.  A particle
  // reflecting off the bottom face hands the wall +y momentum... no: it
  // arrives moving +y (toward the face from below the body is impossible —
  // the gas below moves up INTO the face), i.e. dp·n < 0 and pressure > 0.
  geom::WallEventBuffer ev;
  ev.add(0, 0.3, 1.0, 0.25);
  sampler.record(0, ev);
  geom::WallEventBuffer ev2;
  ev2.add(0, 0.1, 1.0, 0.15);
  sampler.record(1, ev2);
  sampler.end_step();
  sampler.end_step();

  const double rho = 2.0;
  const double sigma = 0.5;
  const double u = 2.0;
  const core::SurfaceStats s = sampler.finalize(sq, rho, sigma, u);
  EXPECT_EQ(s.samples, 2);
  EXPECT_NEAR(s.p_inf, rho * sigma * sigma, 1e-12);        // 0.5
  EXPECT_NEAR(s.q_inf, 0.5 * rho * u * u, 1e-12);          // 4
  const core::SurfaceSegmentStats& seg = s.segments[0];
  EXPECT_NEAR(seg.hits_per_step, 1.0, 1e-12);
  // p = -(sum dp . n) / (steps * area); n = (0,-1), sum dpy = 2.
  EXPECT_NEAR(seg.p, 1.0, 1e-12);
  // tau = (sum dp . t) / (steps * area); t = (1,0), sum dpx = 0.4.
  EXPECT_NEAR(seg.tau, 0.2, 1e-12);
  EXPECT_NEAR(seg.q, 0.2, 1e-12);
  EXPECT_NEAR(seg.cp, (1.0 - 0.5) / 4.0, 1e-12);
  EXPECT_NEAR(seg.cf, 0.2 / 4.0, 1e-12);
  EXPECT_NEAR(seg.ch, 0.2 / (0.5 * rho * u * u * u), 1e-12);
  // Integrated force and coefficients (chord = 1).
  EXPECT_NEAR(s.fx, 0.2, 1e-12);
  EXPECT_NEAR(s.fy, 1.0, 1e-12);
  EXPECT_NEAR(s.cd, 0.2 / 4.0, 1e-12);
  EXPECT_NEAR(s.cl, 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(s.heat_total, 0.2, 1e-12);

  sampler.reset();
  const core::SurfaceStats z = sampler.finalize(sq, rho, sigma, u);
  EXPECT_EQ(z.samples, 0);
  EXPECT_NEAR(z.segments[0].p, 0.0, 1e-12);
}

TEST(SurfaceSampler, SplitsIncidentAndReflectedFluxes) {
  const geom::Body sq = geom::Body::FlatPlate(0.0, 0.0, 1.0, 1.0);
  core::SurfaceSampler sampler(sq.segment_count(), 1, 1.0);
  // Bottom face (area 1): one event carrying the full split.  A particle
  // arrives with normal momentum 0.8 and energy 0.5, leaves with normal
  // momentum 0.6 and energy 0.3 (the wall kept 0.2).
  geom::WallEventBuffer ev;
  ev.add(0, 0.0, 1.4, 0.2, /*p_in=*/0.8, /*p_out=*/0.6, /*e_in=*/0.5,
         /*e_out=*/0.3);
  sampler.record(0, ev);
  sampler.end_step();
  const core::SurfaceStats s = sampler.finalize(sq, 1.0, 0.2, 1.0);
  const core::SurfaceSegmentStats& seg = s.segments[0];
  EXPECT_NEAR(seg.p_incident, 0.8, 1e-12);
  EXPECT_NEAR(seg.p_reflected, 0.6, 1e-12);
  EXPECT_NEAR(seg.q_incident, 0.5, 1e-12);
  EXPECT_NEAR(seg.q_reflected, 0.3, 1e-12);
  EXPECT_NEAR(seg.q, seg.q_incident - seg.q_reflected, 1e-12);
  EXPECT_NEAR(s.q_incident_total, 0.5, 1e-12);
  EXPECT_NEAR(s.q_reflected_total, 0.3, 1e-12);
  // The split reaches the CSV as the p_in/p_out/q_in/q_out columns.
  std::ostringstream os;
  io::write_surface_csv(os, s);
  EXPECT_NE(os.str().find("p_in,p_out,q_in,q_out"), std::string::npos);
}

TEST(SurfaceSampler, ZeroFreestreamReportsRawFluxesOnly) {
  const geom::Body sq = geom::Body::FlatPlate(0.0, 0.0, 1.0, 1.0);
  core::SurfaceSampler sampler(sq.segment_count(), 1, 1.0);
  geom::WallEventBuffer ev;
  ev.add(0, 0.0, 2.0, 0.5);
  sampler.record(0, ev);
  sampler.end_step();
  const core::SurfaceStats s = sampler.finalize(sq, 1.0, 0.2, 0.0);
  EXPECT_GT(s.segments[0].p, 0.0);
  EXPECT_EQ(s.segments[0].cp, 0.0);  // no dynamic pressure to reference
  EXPECT_EQ(s.cd, 0.0);
}

TEST(SurfaceCsv, WritesHeaderAndSkipsEmbeddedSegments) {
  const geom::Body w = geom::Body::Wedge(20.0, 25.0, 30.0 * kRad);
  core::SurfaceSampler sampler(w.segment_count(), 1, 1.0);
  geom::WallEventBuffer ev;
  ev.add(2, -0.5, 0.9, 0.0);
  sampler.record(0, ev);
  sampler.end_step();
  const core::SurfaceStats s = sampler.finalize(w, 1.0, 0.18, 1.0);
  std::ostringstream os;
  io::write_surface_csv(os, s);
  const std::string text = os.str();
  EXPECT_NE(text.find("# samples=1"), std::string::npos);
  EXPECT_NE(text.find("segment,x,y,"), std::string::npos);
  // Three segments, one embedded (the floor): header comment + column row +
  // two data rows.
  int lines = 0;
  for (char c : text)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4);
}

// --- Simulation integration --------------------------------------------------

TEST(SurfaceIntegration, BodyWedgeMatchesLegacyWedgeFields) {
  // The acceptance regression: the generalized Body::Wedge path must
  // reproduce the wedge-specific path within tight statistical tolerance.
  cmdp::ThreadPool pool(0);
  core::SimConfig legacy = body_wedge_config();
  legacy.body.reset();  // wedge-specific path
  core::SimConfig general = body_wedge_config();

  core::SimulationD sim_l(legacy, &pool);
  core::SimulationD sim_b(general, &pool);
  EXPECT_NE(sim_l.wedge(), nullptr);
  EXPECT_EQ(sim_b.wedge(), nullptr);
  ASSERT_NE(sim_b.body(), nullptr);
  // Identical initial particle placement (same seed, same solid region).
  EXPECT_EQ(sim_l.total_count(), sim_b.total_count());

  for (auto* sim : {&sim_l, &sim_b}) {
    sim->run(300);
    sim->set_sampling(true);
    sim->run(300);
  }
  const auto fl = sim_l.field();
  const auto fb = sim_b.field();

  // Cell-wise density agreement in the L1 sense (independent DSMC noise in
  // each cell is a few percent at these sample counts).
  double diff = 0.0;
  double norm = 0.0;
  for (std::size_t c = 0; c < fl.density.size(); ++c) {
    diff += std::abs(fl.density[c] - fb.density[c]);
    norm += std::abs(fl.density[c]);
  }
  ASSERT_GT(norm, 0.0);
  EXPECT_LT(diff / norm, 0.05);

  // Shock-angle agreement within 1% of the legacy value.
  const geom::Wedge analysis_wedge(20.0, 25.0, 30.0 * kRad);
  const auto fit_l = io::measure_oblique_shock(fl, analysis_wedge);
  const auto fit_b = io::measure_oblique_shock(fb, analysis_wedge);
  ASSERT_TRUE(fit_l.valid);
  ASSERT_TRUE(fit_b.valid);
  EXPECT_LT(std::abs(fit_b.angle_deg - fit_l.angle_deg),
            0.01 * fit_l.angle_deg);
  EXPECT_LT(std::abs(fit_b.density_ratio - fit_l.density_ratio),
            0.05 * fit_l.density_ratio);
}

TEST(SurfaceIntegration, WedgeRampPressureMatchesObliqueShockTheory) {
  cmdp::ThreadPool pool(0);
  core::SimulationD sim(body_wedge_config(), &pool);
  sim.run(300);
  sim.set_surface_sampling(true);
  sim.run(300);
  const core::SurfaceStats s = sim.surface();
  ASSERT_EQ(s.samples, 300);
  ASSERT_EQ(s.segments.size(), 3u);

  namespace th = cmdsmc::physics::theory;
  const double beta = th::oblique_shock_angle(30.0 * kRad, 4.0);
  const double mn = 4.0 * std::sin(beta);
  const double p_ratio = th::normal_shock_pressure_ratio(mn);
  const double cp_theory =
      (p_ratio - 1.0) / (0.5 * th::kGammaDiatomic * 16.0);

  // The compression ramp (segment 2) carries the load.
  const core::SurfaceSegmentStats& ramp = s.segments[2];
  EXPECT_GT(ramp.hits_per_step, 10.0);
  EXPECT_NEAR(ramp.cp, cp_theory, 0.25 * cp_theory);
  // Specular walls exert no shear and absorb no heat.
  EXPECT_NEAR(ramp.cf, 0.0, 0.05);
  EXPECT_NEAR(ramp.ch, 0.0, 1e-9);
  // Specular reflection preserves energy exactly, so the incident and
  // reflected energy fluxes coincide while both stay positive.
  EXPECT_GT(ramp.q_incident, 0.0);
  EXPECT_NEAR(ramp.q_incident, ramp.q_reflected,
              1e-9 * std::max(1.0, ramp.q_incident));
  // Pressure decomposes into the incident + reflected momentum streams.
  EXPECT_NEAR(ramp.p, ramp.p_incident + ramp.p_reflected,
              1e-9 * std::max(1.0, ramp.p));
  // The wake-facing back face sees far less pressure than the ramp.
  EXPECT_LT(s.segments[1].p, 0.5 * ramp.p);
  // Ramp normal points up-left: drag positive, lift negative (downforce on
  // a floor-mounted compression ramp).
  EXPECT_GT(s.cd, 0.0);
  EXPECT_LT(s.cl, 0.0);
}

TEST(SurfaceIntegration, UntouchedBodyInheritsConfigWallModel) {
  // Migrating a diffuse-wall config to cfg.body must not silently fall back
  // to specular walls: a body with no per-segment customization inherits
  // cfg.wall / cfg.wall_sigma.
  core::SimConfig cfg = body_wedge_config();
  cfg.wall = geom::WallModel::kDiffuseIsothermal;
  cfg.wall_sigma = 0.2;
  cmdp::ThreadPool pool(1);
  core::SimulationD sim(cfg, &pool);
  ASSERT_NE(sim.body(), nullptr);
  EXPECT_TRUE(sim.body()->any_diffuse());
  EXPECT_EQ(sim.body()->segments()[2].wall,
            geom::WallModel::kDiffuseIsothermal);
  EXPECT_NEAR(sim.body()->segments()[2].wall_sigma, 0.2, 1e-12);
  // Explicit per-segment choices win over the config default.
  core::SimConfig cfg2 = body_wedge_config();
  cfg2.wall = geom::WallModel::kDiffuseIsothermal;
  cfg2.body->set_segment_wall(1, geom::WallModel::kDiffuseAdiabatic, 0.3);
  core::SimulationD sim2(cfg2, &pool);
  EXPECT_EQ(sim2.body()->segments()[1].wall,
            geom::WallModel::kDiffuseAdiabatic);
  EXPECT_EQ(sim2.body()->segments()[2].wall, geom::WallModel::kSpecular);
}

TEST(SurfaceIntegration, DiffuseIsothermalColdWallAbsorbsHeat) {
  core::SimConfig cfg = body_wedge_config();
  cfg.particles_per_cell = 4.0;
  // Cold wall: wall temperature well below the stagnation temperature.
  cfg.body->set_wall_model(geom::WallModel::kDiffuseIsothermal,
                           0.5 * cfg.sigma);
  cmdp::ThreadPool pool(0);
  core::SimulationD sim(cfg, &pool);
  sim.run(200);
  sim.set_surface_sampling(true);
  sim.run(200);
  const core::SurfaceStats s = sim.surface();
  const core::SurfaceSegmentStats& ramp = s.segments[2];
  // Hypersonic stream onto a cold wall: strong heating and nonzero shear.
  EXPECT_GT(ramp.q, 0.0);
  EXPECT_GT(ramp.ch, 0.0);
  EXPECT_GT(s.heat_total, 0.0);
  // Diffuse wall drags the tangential flow: shear along the ramp tangent.
  EXPECT_GT(std::abs(ramp.cf), 0.005);
}

TEST(SurfaceIntegration, CylinderRunsEndToEndWithSurfaceOutput) {
  core::SimConfig cfg;
  cfg.nx = 64;
  cfg.ny = 48;
  cfg.mach = 6.0;
  cfg.sigma = 0.12;
  cfg.particles_per_cell = 6.0;
  cfg.body = geom::Body::Cylinder(24.0, 24.0, 6.0, 24);
  cfg.body->set_wall_model(geom::WallModel::kDiffuseIsothermal, cfg.sigma);
  cfg.seed = 77;
  cmdp::ThreadPool pool(0);
  core::SimulationD sim(cfg, &pool);
  sim.run(150);
  sim.set_sampling(true);
  sim.set_surface_sampling(true);
  sim.run(150);
  const core::SurfaceStats s = sim.surface();
  ASSERT_EQ(s.segments.size(), 24u);
  // Windward half (outward normal opposing the stream) is loaded; the peak
  // pressure sits near the stagnation point (normal closest to -x).
  double cp_max = 0.0;
  double cp_max_nx = 0.0;
  double windward_hits = 0.0;
  for (const auto& seg : s.segments) {
    if (seg.nx < 0.0) windward_hits += seg.hits_per_step;
    if (seg.cp > cp_max) {
      cp_max = seg.cp;
      cp_max_nx = seg.nx;
    }
  }
  EXPECT_GT(windward_hits, 50.0);
  EXPECT_GT(cp_max, 1.0);   // stagnation Cp approaches ~2 (Newtonian limit)
  EXPECT_LT(cp_max, 2.6);
  EXPECT_LT(cp_max_nx, -0.8);  // peak faces the oncoming stream
  EXPECT_GT(s.cd, 0.5);        // blunt body: substantial drag
  // Non-empty CSV.
  std::ostringstream os;
  io::write_surface_csv(os, s);
  EXPECT_GT(os.str().size(), 200u);
}
