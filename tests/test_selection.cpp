#include "physics/selection.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "physics/gas_model.h"

namespace physics = cmdsmc::physics;

TEST(GasModel, GExponents) {
  physics::GasModel maxwell;
  EXPECT_DOUBLE_EQ(maxwell.g_exponent(), 0.0);
  EXPECT_FALSE(maxwell.needs_relative_speed());

  physics::GasModel hs;
  hs.potential = physics::Potential::kHardSphere;
  EXPECT_DOUBLE_EQ(hs.g_exponent(), 1.0);
  EXPECT_TRUE(hs.needs_relative_speed());

  physics::GasModel ipl;
  ipl.potential = physics::Potential::kInversePower;
  ipl.alpha = 8.0;
  EXPECT_DOUBLE_EQ(ipl.g_exponent(), 0.5);
  // alpha = 4 reduces to the Maxwell exponent.
  ipl.alpha = 4.0;
  EXPECT_DOUBLE_EQ(ipl.g_exponent(), 0.0);
}

TEST(GasModel, ValidateRejectsBadAlpha) {
  physics::GasModel m;
  m.potential = physics::Potential::kInversePower;
  m.alpha = -1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Selection, PcFromLambdaMatchesMeanSpeedOverLambda) {
  const double sigma = 0.18;
  const double mean_speed = 2.0 * sigma * std::sqrt(2.0 / std::numbers::pi);
  EXPECT_NEAR(physics::pc_from_lambda(2.0, sigma), mean_speed / 2.0, 1e-12);
  // lambda <= 0 selects near-continuum: P = 1.
  EXPECT_DOUBLE_EQ(physics::pc_from_lambda(0.0, sigma), 1.0);
  // Very small lambda clips at 1 (can't collide more than once per pairing).
  EXPECT_DOUBLE_EQ(physics::pc_from_lambda(1e-6, sigma), 1.0);
}

TEST(Selection, MakeValidates) {
  physics::GasModel gas;
  EXPECT_THROW(physics::SelectionRule::make(gas, 0.5, -1.0, 16.0),
               std::invalid_argument);
  EXPECT_THROW(physics::SelectionRule::make(gas, 0.5, 0.18, 0.0),
               std::invalid_argument);
}

TEST(Selection, NearContinuumAlwaysCollides) {
  physics::GasModel gas;
  const auto rule = physics::SelectionRule::make(gas, 0.0, 0.18, 16.0);
  EXPECT_TRUE(rule.near_continuum);
  EXPECT_DOUBLE_EQ(rule.probability(0.01, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(rule.probability(100.0, 3.0), 1.0);
}

TEST(Selection, MaxwellProbabilityScalesLinearlyWithDensity) {
  physics::GasModel gas;
  const auto rule = physics::SelectionRule::make(gas, 2.0, 0.18, 16.0);
  EXPECT_FALSE(rule.near_continuum);
  const double p1 = rule.probability(16.0, 0.0);
  EXPECT_NEAR(p1, rule.pc_inf, 1e-12);  // n = n_inf
  EXPECT_NEAR(rule.probability(8.0, 0.0), 0.5 * p1, 1e-12);
  EXPECT_NEAR(rule.probability(24.0, 0.0), 1.5 * p1, 1e-12);
  // Maxwell molecules ignore g entirely (the integer-implementation enabler).
  EXPECT_EQ(rule.probability(16.0, 0.1), rule.probability(16.0, 10.0));
}

TEST(Selection, ProbabilityClipsAtOne) {
  physics::GasModel gas;
  const auto rule = physics::SelectionRule::make(gas, 0.6, 0.18, 16.0);
  EXPECT_DOUBLE_EQ(rule.probability(1e9, 0.0), 1.0);
}

TEST(Selection, HardSphereScalesWithRelativeSpeed) {
  physics::GasModel gas;
  gas.potential = physics::Potential::kHardSphere;
  const auto rule = physics::SelectionRule::make(gas, 2.0, 0.18, 16.0);
  const double p_ginf = rule.probability(16.0, rule.g_inf);
  EXPECT_NEAR(p_ginf, rule.pc_inf, 1e-12);
  EXPECT_NEAR(rule.probability(16.0, 2.0 * rule.g_inf), 2.0 * p_ginf, 1e-12);
  EXPECT_NEAR(rule.probability(16.0, 0.5 * rule.g_inf), 0.5 * p_ginf, 1e-12);
}

TEST(Selection, InversePowerLawInterpolates) {
  physics::GasModel gas;
  gas.potential = physics::Potential::kInversePower;
  gas.alpha = 8.0;  // exponent 0.5
  const auto rule = physics::SelectionRule::make(gas, 2.0, 0.18, 16.0);
  const double p = rule.probability(16.0, 4.0 * rule.g_inf);
  EXPECT_NEAR(p, rule.pc_inf * 2.0, 1e-12);  // (4)^0.5 = 2
}

TEST(Selection, MeanRelativeSpeedFormula) {
  // <g> = 4 sigma / sqrt(pi) = sqrt(2) <|c|>.
  const double sigma = 0.3;
  EXPECT_NEAR(physics::mean_relative_speed(sigma),
              std::sqrt(2.0) * 2.0 * sigma * std::sqrt(2.0 / std::numbers::pi),
              1e-12);
}
