#include "cmdp/sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "rng/rng.h"

namespace cmdp = cmdsmc::cmdp;

namespace {

std::vector<std::uint32_t> random_keys(std::size_t n, std::uint32_t bound,
                                       std::uint64_t seed) {
  cmdsmc::rng::SplitMix64 g(seed);
  std::vector<std::uint32_t> keys(n);
  for (auto& k : keys) k = g.next_below(bound);
  return keys;
}

// Reference stable order via std::stable_sort of indices.
std::vector<std::uint32_t> reference_order(
    const std::vector<std::uint32_t>& keys) {
  std::vector<std::uint32_t> idx(keys.size());
  std::iota(idx.begin(), idx.end(), 0u);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return keys[a] < keys[b];
                   });
  return idx;
}

struct SortCase {
  std::size_t n;
  std::uint32_t bound;
};

class SortCases : public ::testing::TestWithParam<SortCase> {};

}  // namespace

TEST_P(SortCases, CountingSortMatchesStableReference) {
  const auto [n, bound] = GetParam();
  if (bound > (1u << 21)) GTEST_SKIP() << "direct counting sort only";
  cmdp::ThreadPool pool(6);
  const auto keys = random_keys(n, bound, 1000 + n);
  std::vector<std::uint32_t> order(n);
  cmdp::counting_sort_index(pool, keys, bound, order);
  EXPECT_EQ(order, reference_order(keys));
}

TEST_P(SortCases, StableSortMatchesStableReference) {
  const auto [n, bound] = GetParam();
  cmdp::ThreadPool pool(6);
  const auto keys = random_keys(n, bound, 2000 + n);
  std::vector<std::uint32_t> order(n);
  cmdp::stable_sort_index(pool, keys, bound, order);
  EXPECT_EQ(order, reference_order(keys));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SortCases,
    ::testing::Values(SortCase{0, 16}, SortCase{1, 16}, SortCase{100, 4},
                      SortCase{5000, 1}, SortCase{10000, 65536},
                      SortCase{100000, 50000}, SortCase{200000, 7},
                      // radix path: key bound beyond the direct threshold
                      SortCase{100000, 1u << 24},
                      SortCase{65536, 0xffffffffu}));

TEST(Sort, OrderIsPermutation) {
  cmdp::ThreadPool pool(4);
  const auto keys = random_keys(77777, 997, 3);
  std::vector<std::uint32_t> order(keys.size());
  cmdp::counting_sort_index(pool, keys, 997, order);
  EXPECT_TRUE(cmdp::is_permutation_of_iota(order));
}

TEST(Sort, KeysAscendingAfterGather) {
  cmdp::ThreadPool pool(4);
  const auto keys = random_keys(50000, 1234, 4);
  std::vector<std::uint32_t> order(keys.size());
  cmdp::counting_sort_index(pool, keys, 1234, order);
  std::vector<std::uint32_t> sorted(keys.size());
  cmdp::gather<std::uint32_t>(pool, keys, order, sorted);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(Histogram, MatchesDirectCount) {
  cmdp::ThreadPool pool(5);
  const std::uint32_t bound = 321;
  const auto keys = random_keys(98765, bound, 5);
  std::vector<std::uint32_t> counts(bound);
  cmdp::histogram(pool, keys, bound, counts);
  std::vector<std::uint32_t> ref(bound, 0);
  for (auto k : keys) ++ref[k];
  EXPECT_EQ(counts, ref);
}

TEST(Histogram, EmptyInput) {
  cmdp::ThreadPool pool(2);
  std::vector<std::uint32_t> keys;
  std::vector<std::uint32_t> counts(10, 99);
  cmdp::histogram(pool, keys, 10, counts);
  for (auto c : counts) EXPECT_EQ(c, 0u);
}

TEST(GatherScatter, AreInverses) {
  cmdp::ThreadPool pool(4);
  const std::size_t n = 60000;
  cmdsmc::rng::SplitMix64 g(6);
  std::vector<double> data(n);
  for (auto& d : data) d = g.next_double();
  // A random permutation via sorting random keys.
  const auto keys = random_keys(n, 1u << 20, 7);
  std::vector<std::uint32_t> order(n);
  cmdp::counting_sort_index(pool, keys, 1u << 20, order);
  std::vector<double> permuted(n), roundtrip(n);
  cmdp::gather<double>(pool, data, order, permuted);
  cmdp::scatter<double>(pool, permuted, order, roundtrip);
  EXPECT_EQ(roundtrip, data);
}

TEST(Sort, IsPermutationDetectsCorruption) {
  std::vector<std::uint32_t> good = {2, 0, 1, 3};
  EXPECT_TRUE(cmdp::is_permutation_of_iota(good));
  std::vector<std::uint32_t> dup = {2, 0, 0, 3};
  EXPECT_FALSE(cmdp::is_permutation_of_iota(dup));
  std::vector<std::uint32_t> oob = {2, 0, 1, 4};
  EXPECT_FALSE(cmdp::is_permutation_of_iota(oob));
}

// --- Plan/apply API: the fused one-pass sort the simulation hot loop uses ---

namespace {

// Reference per-key exclusive starts (size bound + 1).
std::vector<std::uint32_t> reference_starts(
    const std::vector<std::uint32_t>& keys, std::uint32_t bound) {
  std::vector<std::uint32_t> starts(bound + 1, 0);
  for (auto k : keys) ++starts[k + 1];
  for (std::uint32_t k = 0; k < bound; ++k) starts[k + 1] += starts[k];
  return starts;
}

}  // namespace

TEST(SortPlan, KeyStartsMatchReference) {
  for (unsigned threads : {1u, 4u}) {
    cmdp::ThreadPool pool(threads);
    const std::uint32_t bound = 777;
    const auto keys = random_keys(60000, bound, 11);
    const cmdp::SortPlan plan = cmdp::counting_sort_plan(pool, keys, bound);
    EXPECT_EQ(plan.n, keys.size());
    EXPECT_EQ(plan.key_bound, bound);
    const auto ref = reference_starts(keys, bound);
    // Single-lane plans alias the cursors onto key_starts and apply consumes
    // them, so the table must be checked before any apply.
    ASSERT_EQ(plan.key_starts.size(), ref.size());
    for (std::size_t k = 0; k < ref.size(); ++k)
      EXPECT_EQ(plan.key_starts[k], ref[k]) << "key " << k << " @" << threads;
  }
}

TEST(SortPlan, ApplyProducesStableOrder) {
  for (unsigned threads : {1u, 3u, 6u}) {
    cmdp::ThreadPool pool(threads);
    const std::uint32_t bound = 93;
    const auto keys = random_keys(40000, bound, 12);
    const cmdp::SortPlan plan = cmdp::counting_sort_plan(pool, keys, bound);
    std::vector<std::uint32_t> order(keys.size());
    cmdp::apply_sort_plan(pool, keys, plan,
                          [&](std::size_t src, std::size_t dst) {
                            order[dst] = static_cast<std::uint32_t>(src);
                          });
    EXPECT_EQ(order, reference_order(keys)) << threads << " threads";
  }
}

TEST(SortPlan, FromCountsMatchesDirectPlan) {
  for (unsigned threads : {1u, 4u}) {
    cmdp::ThreadPool pool(threads);
    const std::uint32_t bound = 555;
    const std::size_t n = 50000;
    const auto keys = random_keys(n, bound, 13);
    // Accumulate per-lane counts exactly the way a fused producer would:
    // lane t counts the keys of lane_range(n, t, lanes).
    const unsigned lanes = cmdp::sort_plan_lanes(pool, n);
    std::vector<std::uint32_t> lane_counts(
        static_cast<std::size_t>(lanes) * bound, 0);
    for (unsigned t = 0; t < lanes; ++t) {
      const cmdp::Range r = cmdp::lane_range(n, t, lanes);
      for (std::size_t i = r.begin; i < r.end; ++i)
        ++lane_counts[static_cast<std::size_t>(t) * bound + keys[i]];
    }
    const cmdp::SortPlan plan = cmdp::counting_sort_plan_from_counts(
        pool, lane_counts, lanes, n, bound);
    const auto ref = reference_starts(keys, bound);
    for (std::size_t k = 0; k < ref.size(); ++k)
      EXPECT_EQ(plan.key_starts[k], ref[k]) << "key " << k << " @" << threads;
    std::vector<std::uint32_t> order(n);
    cmdp::apply_sort_plan(pool, keys, plan,
                          [&](std::size_t src, std::size_t dst) {
                            order[dst] = static_cast<std::uint32_t>(src);
                          });
    EXPECT_EQ(order, reference_order(keys)) << threads << " threads";
  }
}

TEST(SortPlan, WorkspaceReuseAcrossCalls) {
  // Two different sorts back to back on one pool must not contaminate each
  // other through the shared workspace arena.
  cmdp::ThreadPool pool(4);
  const auto keys_a = random_keys(30000, 400, 14);
  const auto keys_b = random_keys(45000, 90, 15);
  std::vector<std::uint32_t> order_a(keys_a.size());
  std::vector<std::uint32_t> order_b(keys_b.size());
  cmdp::counting_sort_index(pool, keys_a, 400, order_a);
  cmdp::counting_sort_index(pool, keys_b, 90, order_b);
  EXPECT_EQ(order_b, reference_order(keys_b));
  cmdp::counting_sort_index(pool, keys_a, 400, order_a);
  EXPECT_EQ(order_a, reference_order(keys_a));
  // Releasing the arena must be harmless.
  pool.workspace().release();
  cmdp::counting_sort_index(pool, keys_a, 400, order_a);
  EXPECT_EQ(order_a, reference_order(keys_a));
}
