#include "rng/permutation.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace rng = cmdsmc::rng;

TEST(PermTable, Contains120DistinctValidPermutations) {
  const auto& table = rng::perm_table();
  std::set<rng::PackedPerm> seen(table.begin(), table.end());
  EXPECT_EQ(seen.size(), 120u);
  for (auto p : table) EXPECT_TRUE(rng::perm_is_valid(p));
}

TEST(PermTable, FirstIsIdentityLastIsReverse) {
  const auto& table = rng::perm_table();
  EXPECT_EQ(table.front(), rng::identity_perm());
  EXPECT_EQ(table.back(), rng::pack_perm({4, 3, 2, 1, 0}));
}

TEST(PackUnpack, RoundTripsEveryTableEntry) {
  for (auto p : rng::perm_table()) {
    EXPECT_EQ(rng::pack_perm(rng::unpack_perm(p)), p);
  }
}

TEST(PermRank, IsTheInverseOfTheTable) {
  const auto& table = rng::perm_table();
  for (int i = 0; i < rng::kPermCount; ++i) {
    EXPECT_EQ(rng::perm_rank(table[static_cast<std::size_t>(i)]), i);
  }
  EXPECT_EQ(rng::perm_rank(rng::pack_perm({0, 0, 1, 2, 3})), -1);
}

TEST(Transpose, SwapsTwoElements) {
  const auto p = rng::pack_perm({0, 1, 2, 3, 4});
  const auto q = rng::transpose_perm(p, 1, 3);
  EXPECT_EQ(rng::unpack_perm(q), (std::array<std::uint8_t, 5>{0, 3, 2, 1, 4}));
  // Transposing twice restores.
  EXPECT_EQ(rng::transpose_perm(q, 1, 3), p);
  // Self-transposition is a no-op.
  EXPECT_EQ(rng::transpose_perm(p, 2, 2), p);
}

TEST(ApplyPerm, ReordersComponents) {
  const auto p = rng::pack_perm({4, 2, 0, 3, 1});
  const int in[5] = {10, 11, 12, 13, 14};
  int out[5];
  rng::apply_perm(p, in, out);
  EXPECT_EQ(out[0], 14);
  EXPECT_EQ(out[1], 12);
  EXPECT_EQ(out[2], 10);
  EXPECT_EQ(out[3], 13);
  EXPECT_EQ(out[4], 11);
}

TEST(ApplyPerm, IdentityLeavesInputUnchanged) {
  const double in[5] = {1.5, -2.5, 3.5, 0.0, 9.0};
  double out[5];
  rng::apply_perm(rng::identity_perm(), in, out);
  for (int c = 0; c < 5; ++c) EXPECT_EQ(out[c], in[c]);
}

TEST(RandomPerm, UniformOverTheTable) {
  rng::SplitMix64 g(21);
  std::array<int, 120> counts{};
  const int n = 120 * 600;
  for (int i = 0; i < n; ++i) {
    const int r = rng::perm_rank(rng::random_perm(g));
    ASSERT_GE(r, 0);
    ++counts[static_cast<std::size_t>(r)];
  }
  // Chi-square with 119 dof: mean 119, std dev ~15.4.  Accept within 5 sigma.
  double chi2 = 0.0;
  const double expected = n / 120.0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 119 + 5 * 15.43);
  EXPECT_GT(chi2, 119 - 5 * 15.43);
}

TEST(RandomTransposition, AlwaysYieldsValidPermutation) {
  rng::SplitMix64 g(22);
  rng::PackedPerm p = rng::identity_perm();
  for (int i = 0; i < 10000; ++i) {
    p = rng::random_transposition(p, g.next_u64());
    ASSERT_TRUE(rng::perm_is_valid(p));
  }
}

TEST(RandomTransposition, WalkReachesEveryPermutation) {
  // The transposition walk is ergodic over S5 (Aldous–Diaconis); a long walk
  // should visit all 120 states.
  rng::SplitMix64 g(23);
  rng::PackedPerm p = rng::identity_perm();
  std::set<rng::PackedPerm> visited;
  for (int i = 0; i < 40000; ++i) {
    p = rng::random_transposition(p, g.next_u64());
    visited.insert(p);
  }
  EXPECT_EQ(visited.size(), 120u);
}

TEST(RandomTransposition, LongWalkIsApproximatelyUniform) {
  // ~n log n = 10 transpositions decorrelate (paper); sampling every 12th
  // state of the walk should look uniform over S5.
  rng::SplitMix64 g(24);
  rng::PackedPerm p = rng::identity_perm();
  std::array<int, 120> counts{};
  const int kSamples = 40000;
  for (int s = 0; s < kSamples; ++s) {
    for (int t = 0; t < 12; ++t)
      p = rng::random_transposition(p, g.next_u64());
    ++counts[static_cast<std::size_t>(rng::perm_rank(p))];
  }
  double chi2 = 0.0;
  const double expected = kSamples / 120.0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 119 + 6 * 15.43);
}
