// The 3D extension (paper "Future Work": "The code should also be extended
// to 3D"): duct flow with an extruded wedge ramp.
#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.h"

namespace core = cmdsmc::core;
namespace cmdp = cmdsmc::cmdp;

namespace {

core::SimConfig duct_config() {
  core::SimConfig cfg;
  cfg.nx = 32;
  cfg.ny = 16;
  cfg.nz = 8;
  cfg.has_wedge = true;
  cfg.wedge_x0 = 8.0;
  cfg.wedge_base = 8.0;
  cfg.wedge_angle_deg = 25.0;
  cfg.particles_per_cell = 6.0;
  cfg.sigma = 0.18;
  // Small domain: one plunger refill is a large fraction of the population,
  // so park a deeper reserve.
  cfg.reservoir_fraction = 0.25;
  cfg.seed = 31;
  return cfg;
}

core::SimConfig box3d_config() {
  core::SimConfig cfg;
  cfg.nx = 12;
  cfg.ny = 12;
  cfg.nz = 12;
  cfg.closed_box = true;
  cfg.has_wedge = false;
  cfg.mach = 0.01;
  cfg.sigma = 0.2;
  cfg.particles_per_cell = 12.0;
  cfg.reservoir_fraction = 0.0;
  cfg.seed = 32;
  return cfg;
}

}  // namespace

TEST(Sim3D, ClosedBoxConservesEnergyAndCount) {
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(box3d_config(), &pool);
  const double e0 = sim.total_energy();
  const auto n0 = sim.total_count();
  sim.run(60);
  EXPECT_EQ(sim.total_count(), n0);
  EXPECT_NEAR(sim.total_energy() / e0, 1.0, 1e-10);
}

TEST(Sim3D, ParticlesStayInDuct) {
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(duct_config(), &pool);
  sim.run(30);
  const auto& s = sim.particles();
  ASSERT_TRUE(s.has_z);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.flags[i] & core::ParticleStore<double>::kReservoirFlag) continue;
    ASSERT_GE(s.z[i], 0.0);
    ASSERT_LT(s.z[i], 8.0);
    ASSERT_GE(s.y[i], 0.0);
    ASSERT_LT(s.y[i], 16.0);
    ASSERT_FALSE(sim.wedge()->inside(s.x[i], s.y[i]));
  }
}

TEST(Sim3D, DensityFieldIsZUniform) {
  // The wedge is extruded along z, so the statistics of every z-plane agree.
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(duct_config(), &pool);
  sim.run(120);
  sim.set_sampling(true);
  sim.run(120);
  const auto f = sim.field();
  double front = 0.0, back = 0.0;
  int n = 0;
  for (int ix = 2; ix < 30; ++ix)
    for (int iy = 2; iy < 14; ++iy) {
      front += f.at(f.density, ix, iy, 1);
      back += f.at(f.density, ix, iy, 6);
      ++n;
    }
  front /= n;
  back /= n;
  EXPECT_NEAR(front / back, 1.0, 0.06);
}

TEST(Sim3D, CompressionFormsAboveTheRamp) {
  cmdp::ThreadPool pool(4);
  core::SimulationD sim(duct_config(), &pool);
  sim.run(150);
  sim.set_sampling(true);
  sim.run(150);
  const auto f = sim.field();
  // Density above the ramp exceeds the freestream.
  double comp = 0.0;
  int n = 0;
  for (int ix = 10; ix < 15; ++ix) {
    const int y0 = static_cast<int>(sim.wedge()->surface_y(ix + 0.5)) + 1;
    for (int iz = 2; iz < 6; ++iz) {
      comp += f.at(f.density, ix, y0 + 1, iz);
      ++n;
    }
  }
  comp /= n;
  EXPECT_GT(comp, 1.5);
  EXPECT_LT(sim.counters().synthesized, sim.counters().injected / 5 + 1);
}

TEST(Sim3D, ValidatesGridLimits) {
  auto cfg = box3d_config();
  cfg.nz = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}
