// Invariant audit layer (src/audit/).
//
// Two halves, matching the layer's own split:
//  - The pure checks must FIRE on deliberately corrupted inputs (a check
//    that never fires proves nothing) and stay silent on clean ones.
//    These run in every build — the checks are always compiled.
//  - The full Auditor wired into Simulation::step must report ZERO
//    violations over real wedge and axisymmetric runs, and attaching it
//    must not perturb the physics by a single bit.  These need the
//    -DCMDSMC_AUDIT=ON hooks and skip elsewhere.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>

#include "audit/audit.h"
#include "audit/auditor.h"
#include "cmdp/shard.h"
#include "core/checkpoint.h"
#include "core/simulation.h"

namespace audit = cmdsmc::audit;
namespace cmdp = cmdsmc::cmdp;
namespace core = cmdsmc::core;
namespace geom = cmdsmc::geom;

namespace {

core::SimConfig small_wedge_config() {
  core::SimConfig cfg;
  cfg.nx = 49;
  cfg.ny = 32;
  cfg.wedge_x0 = 10.0;
  cfg.wedge_base = 12.0;
  cfg.particles_per_cell = 8.0;
  cfg.seed = 4242;
  return cfg;
}

core::SimConfig small_axi_config() {
  core::SimConfig cfg;
  cfg.nx = 40;
  cfg.ny = 20;
  cfg.has_wedge = false;
  cfg.axisymmetric = true;
  cfg.mach = 4.0;
  cfg.sigma = 0.12;
  cfg.particles_per_cell = 8.0;
  cfg.reservoir_fraction = 0.4;
  cfg.seed = 99;
  return cfg;
}

// A consistent (cell, counts, starts) triple: `occupancy[c]` particles in
// each of `ncells` runs, laid out contiguously.
struct SortFixture {
  std::vector<std::uint32_t> cell, counts, starts;
  explicit SortFixture(const std::vector<std::uint32_t>& occupancy) {
    counts = occupancy;
    starts.resize(counts.size());
    std::uint32_t run = 0;
    for (std::size_t c = 0; c < counts.size(); ++c) {
      starts[c] = run;
      run += counts[c];
      for (std::uint32_t k = 0; k < counts[c]; ++k)
        cell.push_back(static_cast<std::uint32_t>(c));
    }
  }
};

// Four shards on two lanes over 16 pairing cells, costs descending so the
// greedy assignment is non-trivial.
cmdp::ShardPlan two_lane_plan() {
  std::vector<double> cost(16);
  for (std::size_t c = 0; c < cost.size(); ++c)
    cost[c] = static_cast<double>(cost.size() - c);
  return cmdp::build_shard_plan(cost, 4, 2);
}

template <class Real>
core::ParticleStore<Real> tiny_store(std::size_t n, bool weighted = false) {
  core::ParticleStore<Real> store;
  store.has_weight = weighted;
  store.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    store.x[i] = static_cast<Real>(0.5 + static_cast<double>(i % 4));
    store.y[i] = static_cast<Real>(0.5 + static_cast<double>(i / 4 % 4));
    store.ux[i] = static_cast<Real>(1.0 + 0.125 * static_cast<double>(i));
    store.uy[i] = static_cast<Real>(-0.5);
    store.uz[i] = static_cast<Real>(0.25);
    store.r0[i] = static_cast<Real>(0.75);
    store.r1[i] = static_cast<Real>(-0.25);
    store.cell[i] = static_cast<std::uint32_t>(i % 4);
    store.id[i] = static_cast<std::uint32_t>(i);
  }
  return store;
}

}  // namespace

// --- Sort-plan audit -------------------------------------------------------

TEST(AuditSort, CleanRunsPass) {
  SortFixture f({3, 0, 2, 5, 1});
  std::vector<audit::Violation> out;
  audit::check_sort_runs(f.cell, f.counts, f.starts, 0, out);
  EXPECT_TRUE(out.empty());
}

TEST(AuditSort, FiresOnMisfiledParticle) {
  SortFixture f({3, 2, 4});
  f.cell[0] = 2;  // particle in run 0 claims cell 2
  std::vector<audit::Violation> out;
  audit::check_sort_runs(f.cell, f.counts, f.starts, 7, out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().family, audit::Family::kSort);
  EXPECT_EQ(out.front().step, 7);
}

TEST(AuditSort, FiresOnShuffledRuns) {
  SortFixture f({4, 4});
  std::swap(f.cell[1], f.cell[5]);  // cross-run swap breaks both runs
  std::vector<audit::Violation> out;
  audit::check_sort_runs(f.cell, f.counts, f.starts, 0, out);
  EXPECT_GE(out.size(), 2u);
}

TEST(AuditSort, FiresOnBrokenPrefixSum) {
  SortFixture f({2, 3, 1});
  f.starts[1] = 3;  // should be 2
  std::vector<audit::Violation> out;
  audit::check_sort_runs(f.cell, f.counts, f.starts, 0, out);
  EXPECT_FALSE(out.empty());
}

TEST(AuditSort, FiresOnLostParticle) {
  SortFixture f({2, 2});
  f.counts[1] = 1;  // tables tile 3 slots but 4 particles exist
  f.starts = {0, 2};
  std::vector<audit::Violation> out;
  audit::check_sort_runs(f.cell, f.counts, f.starts, 0, out);
  EXPECT_FALSE(out.empty());
}

// --- Shard-plan structural audit --------------------------------------------

TEST(AuditShard, CleanPlanPasses) {
  cmdp::ShardPlan plan = two_lane_plan();
  ASSERT_TRUE(plan.active());
  std::vector<audit::Violation> out;
  audit::check_shard_plan(plan, 16, plan.imbalance, 1e-6, 0, out);
  EXPECT_TRUE(out.empty()) << audit::format_violation(out.front());
}

TEST(AuditShard, FiresOnOverlappingBounds) {
  cmdp::ShardPlan plan = two_lane_plan();
  plan.bounds[1] = plan.bounds[2] + 1;  // shard 1 starts before it ends
  std::vector<audit::Violation> out;
  audit::check_shard_plan(plan, 16, std::nan(""), 1e-6, 0, out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().family, audit::Family::kShard);
}

TEST(AuditShard, FiresOnCoverageGap) {
  cmdp::ShardPlan plan = two_lane_plan();
  plan.bounds.back() = 15;  // last pairing cell no longer covered
  std::vector<audit::Violation> out;
  audit::check_shard_plan(plan, 16, std::nan(""), 1e-6, 0, out);
  EXPECT_FALSE(out.empty());
}

TEST(AuditShard, FiresOnDuplicateShardInOrder) {
  cmdp::ShardPlan plan = two_lane_plan();
  plan.order[0] = plan.order[1];  // no longer a permutation
  std::vector<audit::Violation> out;
  audit::check_shard_plan(plan, 16, std::nan(""), 1e-6, 0, out);
  EXPECT_FALSE(out.empty());
}

TEST(AuditShard, FiresOnNonAscendingLaneList) {
  cmdp::ShardPlan plan = two_lane_plan();
  // Find a lane owning >= 2 shards and reverse its list.
  bool corrupted = false;
  for (unsigned t = 0; t < plan.lanes && !corrupted; ++t) {
    const std::uint32_t b = plan.lane_begin[t];
    const std::uint32_t e = plan.lane_begin[t + 1];
    if (e - b >= 2) {
      std::swap(plan.order[b], plan.order[e - 1]);
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);
  std::vector<audit::Violation> out;
  audit::check_shard_plan(plan, 16, std::nan(""), 1e-6, 0, out);
  EXPECT_FALSE(out.empty());
}

TEST(AuditShard, FiresOnMisreportedImbalance) {
  cmdp::ShardPlan plan = two_lane_plan();
  std::vector<audit::Violation> out;
  audit::check_shard_plan(plan, 16, plan.imbalance + 0.5, 1e-6, 0, out);
  EXPECT_FALSE(out.empty());
}

// --- Conservation: per-cell moments ------------------------------------------

TEST(AuditConservation, CleanSplitMergePasses) {
  auto store = tiny_store<double>(16, /*weighted=*/true);
  audit::CellMoments before, after;
  audit::accumulate_cell_moments(store, 4, before);

  // A legal split: clone particle 0 at half weight (mass, momentum and
  // energy per cell all preserved exactly).
  store.resize(17);
  const std::size_t j = 16;
  store.x[j] = store.x[0];
  store.y[j] = store.y[0];
  store.ux[j] = store.ux[0];
  store.uy[j] = store.uy[0];
  store.uz[j] = store.uz[0];
  store.r0[j] = store.r0[0];
  store.r1[j] = store.r1[0];
  store.cell[j] = store.cell[0];
  store.weight[0] *= 0.5;
  store.weight[j] = store.weight[0];

  audit::accumulate_cell_moments(store, 4, after);
  std::vector<audit::Violation> out;
  audit::compare_cell_moments(before, after, 1e-12, 0, "sort", out);
  EXPECT_TRUE(out.empty()) << audit::format_violation(out.front());
}

TEST(AuditConservation, FiresOnMassLeakingSplit) {
  auto store = tiny_store<double>(16, /*weighted=*/true);
  audit::CellMoments before, after;
  audit::accumulate_cell_moments(store, 4, before);
  store.weight[3] *= 0.5;  // "split" that forgot to append the clone
  audit::accumulate_cell_moments(store, 4, after);
  std::vector<audit::Violation> out;
  audit::compare_cell_moments(before, after, 1e-9, 3, "sort", out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().family, audit::Family::kConservation);
  EXPECT_EQ(out.front().cell, store.cell[3]);
}

TEST(AuditConservation, FiresOnMomentumDrift) {
  auto store = tiny_store<double>(16);
  audit::CellMoments before, after;
  audit::accumulate_cell_moments(store, 4, before);
  store.ux[5] += 0.25;  // merge that moved a velocity without bookkeeping
  audit::accumulate_cell_moments(store, 4, after);
  std::vector<audit::Violation> out;
  audit::compare_cell_moments(before, after, 1e-9, 0, "sort", out);
  EXPECT_FALSE(out.empty());
}

// --- State hygiene ------------------------------------------------------------

TEST(AuditHygiene, FiresOnInjectedNaN) {
  auto store = tiny_store<double>(8);
  store.uy[5] = std::numeric_limits<double>::quiet_NaN();
  std::vector<audit::Violation> out;
  audit::check_finite_store(store, 3, "move", out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.front().family, audit::Family::kHygiene);
  EXPECT_EQ(out.front().cell, 5);
}

TEST(AuditHygiene, FiresOnInfiniteWeight) {
  auto store = tiny_store<double>(4, /*weighted=*/true);
  store.weight[2] = std::numeric_limits<double>::infinity();
  std::vector<audit::Violation> out;
  audit::check_finite_store(store, 0, "move", out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(AuditHygiene, SpanScanFiresOnNaN) {
  std::vector<double> sums(10, 1.5);
  std::vector<audit::Violation> out;
  audit::check_finite_span(sums, "field", 0, "sample", out);
  EXPECT_TRUE(out.empty());
  sums[7] = std::numeric_limits<double>::quiet_NaN();
  audit::check_finite_span(sums, "field", 0, "sample", out);
  EXPECT_FALSE(out.empty());
}

TEST(AuditHygiene, FiresOnEscapedParticle) {
  auto store = tiny_store<double>(8);
  geom::Grid grid{4, 4, 0};
  geom::Scene scene;
  std::vector<audit::Violation> out;
  audit::check_in_domain(store, grid, scene, 0, "move", out);
  EXPECT_TRUE(out.empty());
  store.x[2] = -0.25;  // drifted past the inflow face
  audit::check_in_domain(store, grid, scene, 0, "move", out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.front().cell, 2);
}

TEST(AuditHygiene, ReservoirParticlesAreExempt) {
  auto store = tiny_store<double>(8);
  store.x[2] = -0.25;
  store.flags[2] |= core::ParticleStore<double>::kReservoirFlag;
  geom::Grid grid{4, 4, 0};
  geom::Scene scene;
  std::vector<audit::Violation> out;
  audit::check_in_domain(store, grid, scene, 0, "move", out);
  EXPECT_TRUE(out.empty());
}

// --- Checkpoint hash -----------------------------------------------------------

TEST(AuditCheckpoint, HashIsBitSensitive) {
  auto a = tiny_store<double>(32);
  auto b = tiny_store<double>(32);
  EXPECT_EQ(audit::hash_store(a), audit::hash_store(b));
  b.ux[17] = std::nextafter(b.ux[17], 2.0);  // one ulp
  EXPECT_NE(audit::hash_store(a), audit::hash_store(b));
}

TEST(AuditCheckpoint, RoundTripPreservesHash) {
  auto store = tiny_store<double>(64, /*weighted=*/true);
  const std::string path = "audit_roundtrip_test.ckpt";
  core::save_checkpoint(path, store);
  core::ParticleStore<double> restored;
  core::load_checkpoint(path, restored);
  std::remove(path.c_str());
  EXPECT_EQ(audit::hash_store(store), audit::hash_store(restored));
}

// --- Auditor plumbing -----------------------------------------------------------

TEST(Auditor, NonFatalModeAccumulatesViolations) {
  audit::AuditOptions opt;
  opt.fatal = false;
  audit::Auditor<double> auditor(opt);
  EXPECT_TRUE(auditor.wants(0));
  EXPECT_TRUE(auditor.wants(5));
  audit::AuditOptions sparse;
  sparse.every = 4;
  audit::Auditor<double> cadenced(sparse);
  EXPECT_TRUE(cadenced.wants(8));
  EXPECT_FALSE(cadenced.wants(9));
}

TEST(Auditor, FormatCarriesContext) {
  audit::Violation v{audit::Family::kConservation, 12, "ledger", 34, "boom"};
  const std::string s = audit::format_violation(v);
  EXPECT_NE(s.find("conservation"), std::string::npos);
  EXPECT_NE(s.find("12"), std::string::npos);
  EXPECT_NE(s.find("34"), std::string::npos);
  EXPECT_NE(s.find("boom"), std::string::npos);
  audit::AuditFailure err(v);
  EXPECT_EQ(err.violation().step, 12);
}

// --- Full audited runs (need the compiled-in step hooks) -------------------------

TEST(AuditedRun, WedgeRunIsCleanAndBitIdentical) {
  if (!audit::kAuditCompiled)
    GTEST_SKIP() << "needs a -DCMDSMC_AUDIT=ON build";
  cmdp::ThreadPool pool(4);
  const auto cfg = small_wedge_config();

  core::Simulation<double> plain(cfg, &pool);
  plain.run(24);
  const std::uint64_t plain_hash = audit::hash_store(plain.particles());

  audit::AuditOptions opt;
  opt.fatal = false;
  opt.checkpoint_every = 8;  // exercise the round trip twice in 24 steps
  audit::Auditor<double> auditor(opt);
  core::Simulation<double> audited(cfg, &pool);
  audited.set_auditor(&auditor);
  audited.run(24);

  EXPECT_TRUE(auditor.violations().empty())
      << audit::format_violation(auditor.violations().front());
  EXPECT_GT(auditor.counters().total_checks(), 0u);
  // Every family but kShard must have been exercised (sharding stays
  // inactive on a run this small).
  using F = audit::Family;
  for (F f : {F::kSort, F::kConservation, F::kHygiene, F::kCheckpoint})
    EXPECT_GT(auditor.counters().checks[static_cast<int>(f)], 0u)
        << audit::family_name(f);
  // Observation must not perturb the physics by a single bit.
  EXPECT_EQ(audit::hash_store(audited.particles()), plain_hash);
}

TEST(AuditedRun, AxisymmetricRunIsClean) {
  if (!audit::kAuditCompiled)
    GTEST_SKIP() << "needs a -DCMDSMC_AUDIT=ON build";
  cmdp::ThreadPool pool(2);
  audit::AuditOptions opt;
  opt.fatal = false;
  audit::Auditor<double> auditor(opt);
  core::Simulation<double> sim(small_axi_config(), &pool);
  sim.set_auditor(&auditor);
  sim.run(20);
  EXPECT_TRUE(auditor.violations().empty())
      << audit::format_violation(auditor.violations().front());
  EXPECT_GT(auditor.counters().total_checks(), 0u);
}

TEST(AuditedRun, CadenceSkipsSteps) {
  if (!audit::kAuditCompiled)
    GTEST_SKIP() << "needs a -DCMDSMC_AUDIT=ON build";
  cmdp::ThreadPool pool(2);
  audit::AuditOptions every_step;
  every_step.fatal = false;
  audit::AuditOptions sparse;
  sparse.fatal = false;
  sparse.every = 5;
  audit::Auditor<double> dense(every_step), cadenced(sparse);
  {
    core::Simulation<double> sim(small_wedge_config(), &pool);
    sim.set_auditor(&dense);
    sim.run(10);
  }
  {
    core::Simulation<double> sim(small_wedge_config(), &pool);
    sim.set_auditor(&cadenced);
    sim.run(10);
  }
  EXPECT_LT(cadenced.counters().total_checks(),
            dense.counters().total_checks());
  EXPECT_GT(cadenced.counters().total_checks(), 0u);
}
