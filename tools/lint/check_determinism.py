#!/usr/bin/env python3
"""Determinism lint: static scan for nondeterminism leaks in the simulation.

The repo's headline correctness property is bit-identical reproduction: the
same (seed, config) must give the same particle state on any machine, any
lane count, any rebuild.  The physics therefore draws randomness only from
the counter-based rng/ streams keyed by (seed, particle id, step, salt).
This lint enforces the bans that keep that property machine-checked:

  everywhere under src/:
    - libc randomness: rand(), srand(), drand48 family, random()
    - std::random_device (hardware entropy; never reproducible)
    - std::mt19937 & friends seeded ad hoc (use rng/ streams instead)
    - wall-clock seeding: time(...), clock(), getpid/gettid
  hot paths (src/core, src/physics, src/cmdp, src/rng) additionally:
    - unordered_map / unordered_set: iteration order is
      implementation-defined, so any loop over one that feeds physics
      silently breaks bit-identity
    - std::cout / printf / puts: the hot path must stay silent (output
      belongs to io/, obs/ and the scenario sinks; interleaved prints from
      lanes are also nondeterministic)

A line can be waived with an inline justification:

    foo();  // determinism-ok: <why this use cannot affect physics>

Usage: check_determinism.py [--root DIR]   (default: repo root from script)
Exit: 0 clean, 1 with file:line diagnostics otherwise.
"""

import argparse
import os
import re
import sys

# (regex, message) pairs applied to every source line under src/.
GLOBAL_BANS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("),
     "libc rand()/srand() is not reproducible; use rng/ streams"),
    (re.compile(r"\b[dlm]rand48\s*\("),
     "drand48 family is hidden global state; use rng/ streams"),
    (re.compile(r"\brandom\s*\(\s*\)"),
     "libc random() is not reproducible; use rng/ streams"),
    (re.compile(r"std::random_device"),
     "std::random_device draws hardware entropy; runs become unrepeatable"),
    (re.compile(r"std::(mt19937|minstd_rand|ranlux\d+|knuth_b)\b"),
     "ad-hoc <random> engines bypass the counter-based rng/ streams"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(NULL|nullptr|0|\))"),
     "wall-clock seeding breaks reproducibility; plumb the config seed"),
    (re.compile(r"(?<![\w:.])clock\s*\(\s*\)"),
     "clock() in sim code is a determinism leak; use obs/ timers"),
    (re.compile(r"\bget(pid|tid)\s*\("),
     "process ids are not reproducible; derive names from config/seed"),
]

# Additional bans inside the hot-path directories.
HOT_BANS = [
    (re.compile(r"\bunordered_(map|set|multimap|multiset)\b"),
     "unordered container iteration order is implementation-defined; "
     "use a sorted container or indexed vectors in physics code"),
    (re.compile(r"std::cout\b"),
     "hot paths must not write stdout; route output through io/ sinks"),
    (re.compile(r"(?<![\w:.])(printf|puts|putchar)\s*\("),
     "hot paths must not write stdout; route output through io/ sinks"),
]

HOT_DIRS = ("core", "physics", "cmdp", "rng")
WAIVER = "determinism-ok:"
EXTS = (".h", ".cpp")


def strip_comment_text(line: str) -> str:
    """Removes // comment text so prose mentioning rand() does not trip the
    scan (the waiver is detected before stripping)."""
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


def scan_file(path: str, hot: bool):
    findings = []
    bans = GLOBAL_BANS + (HOT_BANS if hot else [])
    with open(path, encoding="utf-8", errors="replace") as f:
        for lineno, raw in enumerate(f, 1):
            if WAIVER in raw:
                continue
            line = strip_comment_text(raw)
            for pattern, message in bans:
                if pattern.search(line):
                    findings.append((path, lineno, raw.rstrip(), message))
    return findings


def main() -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root",
                    default=os.path.normpath(os.path.join(here, "..", "..")),
                    help="repository root (containing src/)")
    args = ap.parse_args()

    src = os.path.join(args.root, "src")
    if not os.path.isdir(src):
        print(f"check_determinism: FAIL — no src/ under {args.root}")
        return 1

    findings = []
    scanned = 0
    for dirpath, _, names in sorted(os.walk(src)):
        rel = os.path.relpath(dirpath, src)
        top = rel.split(os.sep, 1)[0]
        hot = top in HOT_DIRS
        for name in sorted(names):
            if not name.endswith(EXTS):
                continue
            scanned += 1
            findings += scan_file(os.path.join(dirpath, name), hot)

    for path, lineno, line, message in findings:
        rel = os.path.relpath(path, args.root)
        print(f"{rel}:{lineno}: {message}")
        print(f"    {line.strip()}")
    if findings:
        print(f"check_determinism: FAIL — {len(findings)} finding(s) over "
              f"{scanned} files (waive with '// {WAIVER} <reason>')")
        return 1
    print(f"check_determinism: OK — {scanned} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
